// Command gridsweep regenerates the paper's evaluation: all 72 experiments
// (12 ES×DS pairs × 2 bandwidths × 3 seeds) and the tables behind Figures
// 3a, 3b, 4, and 5.
//
// Usage:
//
//	gridsweep                  # full campaign, all figures
//	gridsweep -fig 3a          # just one figure's table
//	gridsweep -csv             # machine-readable rows for plotting
//	gridsweep -quick           # reduced workload for a fast shape check
//	gridsweep -list            # print the Table 1 configuration and exit
//	gridsweep -jsonl out.jsonl # stream each finished cell to a JSONL file
//	gridsweep -from-jsonl f    # regenerate reports from a streamed file
//	gridsweep -listen :8080    # live /metrics, /status, /events while running
//	gridsweep -dispatch URL    # shard the campaign across a fabric dispatcher
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/fabric"
	"chicsim/internal/obs"
	"chicsim/internal/obs/monitor"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/report"
	"chicsim/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 3a, 3b, 4, 5, faults, feedback, all")
	siteMTBFs := flag.String("site-mtbf", "0,14400,7200,3600", "comma-separated site-crash MTBFs for -fig faults (s; 0 = failure-free control)")
	faultMTTR := flag.Float64("fault-mttr", 600, "mean site repair time for -fig faults/feedback (s)")
	fbStaleness := flag.Float64("feedback-staleness", 120, "GIS InfoStaleness for the -fig feedback contended scenario (s)")
	fbMTBF := flag.Float64("feedback-mtbf", 3600, "site-crash MTBF for the -fig feedback degraded column (s; 0 = skip)")
	csv := flag.Bool("csv", false, "emit CSV rows instead of tables")
	md := flag.Bool("md", false, "emit markdown tables (EXPERIMENTS.md format)")
	quick := flag.Bool("quick", false, "reduced workload (1500 jobs, 1 seed) for a fast check")
	seeds := flag.Int("seeds", 3, "seed replications per cell")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "print the Table 1 configuration and exit")
	progressJSONL := flag.String("progress-jsonl", "", "stream per-simulation progress records to this JSONL file")
	jsonlPath := flag.String("jsonl", "", "stream each completed cell's result to this JSONL file as the campaign runs")
	fromJSONL := flag.String("from-jsonl", "", "skip the campaign and regenerate reports from a previously streamed -jsonl file")
	dispatch := flag.String("dispatch", "", "submit the campaign to a fabric dispatcher (griddispatch URL) and wait for the merged result instead of simulating locally")
	fleetTrace := flag.String("fleet-trace", "", "with -dispatch: write the campaign timeline as a Chrome/Perfetto trace to this file after the merge (.gz gzips)")
	resultMode := flag.String("result-mode", "", "result collection for every simulation: full (default) or bounded (constant-memory sketches)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if obsFlags.StreamPath != "" {
		fmt.Fprintln(os.Stderr, "gridsweep: -obs-stream applies to a single simulation; ignoring (use chicsim -obs-stream)")
		obsFlags.StreamPath = ""
	}
	if obsFlags.TracePath != "" {
		fmt.Fprintln(os.Stderr, "gridsweep: -trace-out applies to a single simulation; ignoring (use chicsim -trace-out or dgetrace -run)")
		obsFlags.TracePath = ""
	}

	base := core.DefaultConfig()
	base.ResultMode = *resultMode
	if *list {
		printTable1(base)
		return
	}

	var mtbfs []float64
	switch *fig {
	case "faults":
		for _, part := range strings.Split(*siteMTBFs, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "gridsweep: bad -site-mtbf value %q\n", part)
				os.Exit(2)
			}
			mtbfs = append(mtbfs, v)
		}
	case "feedback":
		mtbfs = []float64{0}
		if *fbMTBF > 0 {
			mtbfs = append(mtbfs, *fbMTBF)
		}
	}

	if *fromJSONL != "" {
		results, err := experiments.ReadStreamFile(*fromJSONL)
		if err != nil {
			// A campaign killed mid-write leaves a truncated final line;
			// every intact record before it is still good.
			if len(results) == 0 {
				fmt.Fprintln(os.Stderr, "gridsweep:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "gridsweep: warning: %v; recovering the %d intact cells before it\n",
				err, len(results))
		}
		// At-least-once delivery (fabric workers, resumed campaigns) can
		// leave duplicate or out-of-order records; last write wins per cell.
		var superseded int
		results, superseded = experiments.Canonicalize(results)
		if superseded > 0 {
			fmt.Fprintf(os.Stderr, "gridsweep: warning: %d duplicate cell records in %s superseded (last write wins)\n",
				superseded, *fromJSONL)
		}
		fmt.Fprintf(os.Stderr, "gridsweep: rebuilding reports from %d streamed cells in %s\n",
			len(results), *fromJSONL)
		render(results, *fig, *csv, *md, mtbfs)
		return
	}

	if *quick {
		base.TotalJobs = 1500
		*seeds = 1
	}

	var seedList []uint64
	for s := 1; s <= *seeds; s++ {
		seedList = append(seedList, uint64(s))
	}

	var cells []experiments.Cell
	switch *fig {
	case "3a", "3b", "4":
		cells = experiments.PaperCells(10)
	case "5":
		cells = experiments.Figure5Cells()
	case "faults":
		base.Faults.SiteCrash.MTTR = *faultMTTR
		base.Faults.RequeueOnRecovery = true
		base.Faults.RestoreReplicas = true
		cells = experiments.FaultSweepCells(10, mtbfs)
	case "feedback":
		// Contended grid: stale scheduling information is what the
		// telemetry loop compensates for. The degraded column adds site
		// crashes on top (fault-telemetry avoidance).
		base.InfoStaleness = *fbStaleness
		base.Faults.SiteCrash.MTTR = *faultMTTR
		base.Faults.RequeueOnRecovery = true
		base.Faults.RestoreReplicas = true
		cells = experiments.FeedbackSweepCells(10, mtbfs)
	case "all":
		cells = append(experiments.PaperCells(10), experiments.PaperCells(100)...)
	default:
		fmt.Fprintf(os.Stderr, "gridsweep: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if *dispatch != "" {
		runDispatched(*dispatch, base, cells, seedList, obsFlags, *jsonlPath, *fleetTrace, *fig, *csv, *md, mtbfs)
		return
	}
	if *fleetTrace != "" {
		fmt.Fprintln(os.Stderr, "gridsweep: -fleet-trace only applies with -dispatch; ignoring")
	}

	totalSims := len(cells) * len(seedList)
	fmt.Fprintf(os.Stderr, "gridsweep: running %d cells × %d seeds (%d simulations)...\n",
		len(cells), len(seedList), totalSims)

	var manifest *obs.Manifest
	if obsFlags.ManifestPath != "" {
		var err error
		manifest, err = obs.NewManifest("gridsweep", base, seedList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		manifest.SetExtra("cells", len(cells))
	}
	progress := obs.NewProgress(os.Stderr, "gridsweep", totalSims)
	if *progressJSONL != "" {
		f, err := os.Create(*progressJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		progress.JSONLTo(f)
	}
	stopProfiling, err := obsFlags.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}

	// Live control plane: shared metrics registry, invariant watchdog,
	// optional HTTP monitor with per-cell campaign state.
	wdMode, err := watchdog.ParseMode(obsFlags.WatchdogMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(2)
	}
	var reg *registry.Registry
	if obsFlags.ListenAddr != "" || obsFlags.MetricsPath != "" {
		reg = registry.New()
	}

	type cellState struct {
		RunsDone int    `json:"runs_done"`
		RunsOK   int    `json:"runs_ok"`
		Err      string `json:"err,omitempty"`
	}
	var stateMu sync.Mutex
	cellStates := make(map[string]*cellState, len(cells))
	for _, c := range cells {
		cellStates[c.String()] = &cellState{}
	}

	var srv *monitor.Server
	if obsFlags.ListenAddr != "" {
		var extra map[string]http.Handler
		if obsFlags.Pprof {
			extra = monitor.PprofHandlers()
		}
		srv, err = monitor.StartMux(obsFlags.ListenAddr, reg, func() any {
			stateMu.Lock()
			cellsCopy := make(map[string]cellState, len(cellStates))
			for k, v := range cellStates {
				cellsCopy[k] = *v
			}
			stateMu.Unlock()
			return struct {
				Progress obs.Snapshot         `json:"progress"`
				Seeds    []uint64             `json:"seeds"`
				RunsPer  int                  `json:"runs_per_cell"`
				Cells    map[string]cellState `json:"cells"`
			}{progress.Snapshot(), seedList, len(seedList), cellsCopy}
		}, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "gridsweep: monitor listening on http://%s (/metrics /status /events)\n", srv.Addr())
	}

	var stream *experiments.StreamWriter
	if *jsonlPath != "" {
		stream, err = experiments.CreateStream(*jsonlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
	}

	// On SIGINT/SIGTERM, flush the streamed results and write the manifest
	// marked interrupted: every cell finished so far stays usable
	// (`gridsweep -from-jsonl` rebuilds the reports from them).
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "gridsweep: interrupted; flushing partial results")
		if stream != nil {
			stream.Close()
		}
		if manifest != nil {
			manifest.MarkInterrupted()
			manifest.SetExtra("workers", *workers)
			manifest.Finish()
			if err := manifest.WriteFile(obsFlags.ManifestPath); err != nil {
				fmt.Fprintln(os.Stderr, "gridsweep:", err)
			}
		}
		if srv != nil {
			srv.Close()
		}
		os.Exit(130)
	}()

	campaign := experiments.Campaign{
		Base:     base,
		Cells:    cells,
		Seeds:    seedList,
		Workers:  *workers,
		Progress: progress,
		Metrics:  reg,
		Watchdog: wdMode,
		OnRunDone: func(cell experiments.Cell, seed uint64, rerr error) {
			stateMu.Lock()
			cs := cellStates[cell.String()]
			cs.RunsDone++
			if rerr != nil {
				cs.Err = rerr.Error()
			} else {
				cs.RunsOK++
			}
			stateMu.Unlock()
			if srv != nil {
				srv.Publish("run_done", map[string]any{"cell": cell.String(), "seed": seed})
			}
		},
		OnCellDone: func(cr *experiments.CellResult) {
			if stream != nil {
				if werr := stream.Write(experiments.RecordOf(cr)); werr != nil {
					fmt.Fprintln(os.Stderr, "gridsweep:", werr)
				}
			}
			if srv != nil {
				srv.Publish("cell_done", map[string]any{
					"cell": cr.Cell.String(), "avg_response_s": cr.AvgResponseSec,
				})
			}
		},
	}
	if wdMode != watchdog.Off {
		campaign.OnViolation = func(cell experiments.Cell, seed uint64, v watchdog.Violation) {
			fmt.Fprintf(os.Stderr, "gridsweep: watchdog: %v seed=%d: %v\n", cell, seed, v)
			if srv != nil {
				srv.Publish("violation", map[string]any{
					"cell": cell.String(), "seed": seed, "violation": v.String(),
				})
			}
		}
	}
	if obsFlags.SeriesPath != "" {
		campaign.ObsInterval = obsFlags.SeriesInterval
	}
	if (reg != nil || wdMode != watchdog.Off) && campaign.ObsInterval == 0 && base.ObsInterval == 0 {
		campaign.ObsInterval = obsFlags.SeriesInterval
	}
	results := experiments.Run(campaign)
	progress.Finish()
	if perr := stopProfiling(); perr != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", perr)
	}
	if stream != nil {
		if cerr := stream.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", cerr)
		} else {
			fmt.Fprintf(os.Stderr, "gridsweep: streamed %d cells to %s\n", len(results), *jsonlPath)
		}
	}
	for i := range results {
		if results[i].Err != nil {
			fmt.Fprintf(os.Stderr, "gridsweep: %v failed: %v\n", results[i].Cell, results[i].Err)
		}
	}
	if obsFlags.SeriesPath != "" {
		writeReferenceSeries(results, obsFlags.SeriesPath)
	}
	if obsFlags.MetricsPath != "" {
		if err := writeMetricsSnapshot(reg, obsFlags.MetricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
	}
	if manifest != nil {
		manifest.SetExtra("workers", *workers)
		manifest.Finish()
		if err := manifest.WriteFile(obsFlags.ManifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
	}

	render(results, *fig, *csv, *md, mtbfs)
}

// runDispatched shards the campaign across a fabric dispatcher instead of
// simulating locally: submit the spec, wait for the merged stream, then
// render reports from it. Because workers execute cells through the same
// experiments.Run path and the dispatcher merges records into canonical
// campaign order, the stream — and every report rendered from it — is
// byte-identical to a single-process run.
func runDispatched(addr string, base core.Config, cells []experiments.Cell, seeds []uint64,
	obsFlags *obs.Flags, jsonlPath, fleetTrace, fig string, csv, md bool, mtbfs []float64) {
	if obsFlags.ListenAddr != "" || obsFlags.MetricsPath != "" || obsFlags.WatchdogMode != "off" {
		fmt.Fprintln(os.Stderr, "gridsweep: -listen/-metrics-out/-watchdog run on the dispatcher and workers; ignoring in -dispatch mode")
	}
	spec := fabric.CampaignSpec{Base: base, Cells: cells, Seeds: seeds}
	client := &fabric.Client{BaseURL: addr}
	sub, err := client.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}
	if sub.Resumed {
		fmt.Fprintf(os.Stderr, "gridsweep: attached to campaign %s already on dispatcher %s\n", sub.CampaignID, addr)
	} else {
		fmt.Fprintf(os.Stderr, "gridsweep: submitted campaign %s (%d cells × %d seeds) to %s\n",
			sub.CampaignID, len(cells), len(seeds), addr)
	}

	var manifest *obs.Manifest
	if obsFlags.ManifestPath != "" {
		manifest, err = obs.NewManifest("gridsweep", base, seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		manifest.SetExtra("cells", len(cells))
		manifest.SetExtra("dispatcher", addr)
		manifest.SetExtra("campaign_id", sub.CampaignID)
	}

	// Ctrl-C stops the wait, not the campaign: the fabric keeps running
	// and rerunning gridsweep with the same flags re-attaches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	lastLine := ""
	merged, err := client.WaitMerged(ctx, sub.CampaignID, time.Second, func(doc fabric.StateDoc) {
		line := progressLine(client, doc)
		if line != lastLine {
			fmt.Fprintln(os.Stderr, line)
			lastLine = line
		}
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "gridsweep: wait interrupted; the campaign keeps running on the dispatcher (rerun to re-attach)")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}
	if jsonlPath != "" {
		if werr := os.WriteFile(jsonlPath, merged, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gridsweep: wrote merged stream (%d cells) to %s\n", len(cells), jsonlPath)
	}
	if fleetTrace != "" {
		if err := writeFleetTrace(client, fleetTrace); err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gridsweep: wrote fleet trace to %s (open in Perfetto or chrome://tracing)\n", fleetTrace)
	}
	results, err := experiments.ReadStream(bytes.NewReader(merged))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}
	for i := range results {
		if results[i].Err != nil {
			fmt.Fprintf(os.Stderr, "gridsweep: %v failed: %v\n", results[i].Cell, results[i].Err)
		}
	}
	if manifest != nil {
		manifest.Finish()
		if err := manifest.WriteFile(obsFlags.ManifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
	}
	render(results, fig, csv, md, mtbfs)
}

// progressLine renders one -dispatch progress line. The fleet endpoint
// enriches it with liveness, requeues, and an ETA; an older dispatcher
// without /api/fleet degrades to the bare shard counts.
func progressLine(client *fabric.Client, doc fabric.StateDoc) string {
	done := doc.Counts["completed"] + doc.Counts["failed"]
	line := fmt.Sprintf("gridsweep: fabric: %d/%d shards done, %d executing",
		done, len(doc.Shards), doc.Counts["executing"])
	fleet, err := client.Fleet()
	if err != nil {
		return line + fmt.Sprintf(", %d workers", len(doc.Workers))
	}
	live := 0
	for _, w := range fleet.Workers {
		if w.Live {
			live++
		}
	}
	line += fmt.Sprintf(", %d/%d workers live", live, len(fleet.Workers))
	if fleet.Requeues > 0 {
		line += fmt.Sprintf(", %d requeues", fleet.Requeues)
	}
	if fleet.ETASeconds > 0 {
		line += fmt.Sprintf(", ETA %s", (time.Duration(fleet.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	return line
}

// writeFleetTrace fetches the campaign timeline and writes it as a
// Chrome trace-event file (gzipped when the path ends in .gz).
func writeFleetTrace(client *fabric.Client, path string) error {
	doc, err := client.Timeline()
	if err != nil {
		return err
	}
	spans, markers := fabric.FleetTraceData(doc)
	w, err := trace.CreateWriter(path)
	if err != nil {
		return err
	}
	if err := trace.WriteFleetChrome(w, spans, markers); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// render writes the requested report for results, whether they came from a
// live campaign or a -from-jsonl stream.
func render(results []experiments.CellResult, fig string, csv, md bool, mtbfs []float64) {
	if csv {
		report.CSV(os.Stdout, results)
		return
	}
	esNames := core.PaperExternalNames()
	dsNames := core.PaperDatasetNames()
	if md {
		for _, f := range []struct {
			title string
			m     report.Metric
		}{
			{"Figure 3a", report.ResponseTime},
			{"Figure 3b", report.DataTransferred},
			{"Figure 4", report.IdleTime},
		} {
			fmt.Printf("### %s\n\n", f.title)
			report.MarkdownGrid(os.Stdout, results, f.m, esNames, dsNames, 10)
			fmt.Println()
		}
		fmt.Printf("### Response-time decomposition\n\n")
		report.DecompositionMarkdown(os.Stdout, results, esNames, "DataLeastLoaded", 10)
		fmt.Println()
		return
	}
	switch fig {
	case "faults":
		printFaultTable(results, mtbfs)
	case "feedback":
		printFeedbackTable(results, mtbfs)
	case "3a":
		report.Grid(os.Stdout, results, report.ResponseTime, esNames, dsNames, 10)
	case "3b":
		report.Grid(os.Stdout, results, report.DataTransferred, esNames, dsNames, 10)
	case "4":
		report.Grid(os.Stdout, results, report.IdleTime, esNames, dsNames, 10)
	case "5":
		report.Bandwidths(os.Stdout, results, esNames, "DataLeastLoaded", []float64{10, 100})
	case "all":
		fmt.Println("=== Figure 3a ===")
		report.Grid(os.Stdout, results, report.ResponseTime, esNames, dsNames, 10)
		fmt.Println("\n=== Figure 3b ===")
		report.Grid(os.Stdout, results, report.DataTransferred, esNames, dsNames, 10)
		fmt.Println("\n=== Figure 4 ===")
		report.Grid(os.Stdout, results, report.IdleTime, esNames, dsNames, 10)
		fmt.Println("\n=== Figure 5 ===")
		report.Bandwidths(os.Stdout, results, esNames, "DataLeastLoaded", []float64{10, 100})
		if maxRuns(results) >= 2 {
			fmt.Println("\n=== §5.3 significance check ===")
			report.Significance(os.Stdout, results,
				experiments.Cell{ES: "JobDataPresent", DS: "DataRandom", BandwidthMBps: 10},
				experiments.Cell{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: 10})
		}
	}
}

// maxRuns returns the largest per-cell run count (seed replications).
func maxRuns(results []experiments.CellResult) int {
	m := 0
	for i := range results {
		if n := len(results[i].Runs); n > m {
			m = n
		}
	}
	return m
}

// writeMetricsSnapshot dumps the campaign registry as Prometheus text.
func writeMetricsSnapshot(reg *registry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := registry.WritePrometheus(f, reg.Gather())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Fprintf(os.Stderr, "gridsweep: wrote metrics snapshot to %s\n", path)
	}
	return werr
}

// printFaultTable renders the degraded-grid sweep: one row per scheduler
// pair, one column per site-crash MTBF, cell value = mean response time
// over seeds (with the abandoned-job count when any jobs were lost).
func printFaultTable(results []experiments.CellResult, mtbfs []float64) {
	byCell := make(map[experiments.Cell]*experiments.CellResult, len(results))
	var pairs []experiments.Cell
	seen := make(map[experiments.Cell]bool)
	for i := range results {
		byCell[results[i].Cell] = &results[i]
		key := experiments.Cell{ES: results[i].Cell.ES, DS: results[i].Cell.DS,
			BandwidthMBps: results[i].Cell.BandwidthMBps}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}
	fmt.Println("Degraded grid: avg response time (s) vs site-crash MTBF")
	fmt.Printf("%-34s", "ES+DS")
	for _, m := range mtbfs {
		if m == 0 {
			fmt.Printf("  %12s", "no faults")
		} else {
			fmt.Printf("  %10gs", m)
		}
	}
	fmt.Println()
	for _, p := range pairs {
		fmt.Printf("%-34s", p.ES+"+"+p.DS)
		for _, m := range mtbfs {
			key := p
			key.SiteMTBF = m
			cr, ok := byCell[key]
			if !ok || cr.Err != nil || len(cr.Runs) == 0 {
				fmt.Printf("  %12s", "-")
				continue
			}
			abandoned := 0
			for _, r := range cr.Runs {
				abandoned += r.JobsFailed
			}
			if abandoned > 0 {
				fmt.Printf("  %8.0f(%d!)", cr.AvgResponseSec, abandoned)
			} else {
				fmt.Printf("  %12.0f", cr.AvgResponseSec)
			}
		}
		fmt.Println()
	}
	fmt.Println("(! = jobs abandoned after exhausting retries, summed over seeds)")
}

// printFeedbackTable renders the adaptive-vs-static sweep: one row per
// scheduler pair, a contended column (stale GIS, no faults) and, when
// requested, a degraded column (site crashes on top).
func printFeedbackTable(results []experiments.CellResult, mtbfs []float64) {
	byCell := make(map[experiments.Cell]*experiments.CellResult, len(results))
	var pairs []experiments.Cell
	seen := make(map[experiments.Cell]bool)
	for i := range results {
		byCell[results[i].Cell] = &results[i]
		key := experiments.Cell{ES: results[i].Cell.ES, DS: results[i].Cell.DS,
			BandwidthMBps: results[i].Cell.BandwidthMBps}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}
	fmt.Println("Feedback sweep: avg response time (s), contended grid (stale GIS)")
	fmt.Printf("%-34s", "ES+DS")
	for _, m := range mtbfs {
		if m == 0 {
			fmt.Printf("  %14s", "contended")
		} else {
			fmt.Printf("  %5s%8gs", "+mtbf", m)
		}
	}
	fmt.Println()
	for _, p := range pairs {
		fmt.Printf("%-34s", p.ES+"+"+p.DS)
		for _, m := range mtbfs {
			key := p
			key.SiteMTBF = m
			cr, ok := byCell[key]
			if !ok || cr.Err != nil || len(cr.Runs) == 0 {
				fmt.Printf("  %14s", "-")
				continue
			}
			fmt.Printf("  %11.0f±%-2.0f", cr.AvgResponseSec, cr.CI95ResponseSec)
		}
		fmt.Println()
	}
	fmt.Println("(± = 95% CI half-width over seeds)")
}

// writeReferenceSeries dumps the probe series of the campaign's reference
// run — first cell, lowest seed — as CSV. Series are sampled inside each
// simulation's own event loop, so the file is bit-identical for a given
// seed regardless of -workers.
func writeReferenceSeries(results []experiments.CellResult, path string) {
	for i := range results {
		if results[i].Err != nil || len(results[i].Runs) == 0 {
			continue
		}
		run := results[i].Runs[0]
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		report.SeriesCSV(f, run.Series)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gridsweep:", err)
			os.Exit(1)
		}
		samples := 0
		if run.Series != nil {
			samples = len(run.Series.Points)
		}
		fmt.Fprintf(os.Stderr, "gridsweep: wrote %d probe samples for %v seed=%d to %s\n",
			samples, results[i].Cell, run.Seed, path)
		return
	}
	fmt.Fprintln(os.Stderr, "gridsweep: no successful run to take a series from")
}

func printTable1(cfg core.Config) {
	fmt.Println("Table 1: simulation parameters")
	fmt.Printf("  Total number of users:    %d\n", cfg.Users)
	fmt.Printf("  Number of sites:          %d\n", cfg.Sites)
	fmt.Printf("  Compute elements/site:    %d-%d\n", cfg.MinCEs, cfg.MaxCEs)
	fmt.Printf("  Total number of datasets: %d\n", cfg.Files)
	fmt.Printf("  Connectivity bandwidth:   %g MB/s (scenario 1), %g MB/s (scenario 2)\n",
		cfg.BandwidthMBps, cfg.BandwidthMBps*10)
	fmt.Printf("  Size of workload:         %d jobs\n", cfg.TotalJobs)
	fmt.Println("Documented assumptions (not in the paper's Table 1):")
	fmt.Printf("  Dataset sizes:            %g-%g GB uniform\n", cfg.MinFileGB, cfg.MaxFileGB)
	fmt.Printf("  Compute per GB of input:  %g s\n", cfg.ComputePerGB)
	fmt.Printf("  Popularity:               %v (p=%g)\n", cfg.Popularity, cfg.GeomP)
	fmt.Printf("  Per-site storage:         %g GB (LRU)\n", cfg.StorageGB)
	fmt.Printf("  DS interval/threshold:    %gs / %d accesses\n", cfg.DSInterval, cfg.DSThreshold)
	fmt.Printf("  Region fanout:            %d sites per regional center\n", cfg.RegionFanout)
}
