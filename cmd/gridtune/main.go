// Command gridtune hill-climbs the feedback scheduler's knobs toward
// minimum mean response time on the contended-grid scenario, streaming
// the evaluation trajectory as JSONL. The climb is fully deterministic:
// the same -tuner-seed (and workload seeds) reproduces the identical
// sequence of evaluations and the identical winner.
//
// Usage:
//
//	gridtune                    # tune with the default budget, print the winner
//	gridtune -quick             # reduced workload for a fast shape check
//	gridtune -evals 40          # cap objective evaluations
//	gridtune -jsonl traj.jsonl  # stream the trajectory to a file
//	gridtune -baseline          # also run the static baseline for comparison
package main

import (
	"flag"
	"fmt"
	"os"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
	"chicsim/internal/experiments/tune"
	"chicsim/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload (1500 jobs, 1 seed) for a fast check")
	seeds := flag.Int("seeds", 2, "workload seed replications per evaluation")
	workers := flag.Int("workers", 0, "parallel simulations per evaluation (0 = GOMAXPROCS)")
	evals := flag.Int("evals", 48, "objective evaluation budget")
	tunerSeed := flag.Uint64("tuner-seed", 1, "seed for the tuner's knob visit order")
	jsonlPath := flag.String("jsonl", "", "stream each evaluation to this JSONL file as the climb runs")
	staleness := flag.Float64("staleness", 120, "GIS InfoStaleness of the contended scenario (s)")
	bandwidth := flag.Float64("bw", 10, "link bandwidth (MB/s)")
	baseline := flag.Bool("baseline", false, "also measure JobDataPresent+DataLeastLoaded on the same scenario")
	flag.Parse()

	base := core.DefaultConfig()
	base.ES = "JobFeedback"
	base.DS = "DataFeedback"
	base.InfoStaleness = *staleness
	base.BandwidthMBps = *bandwidth
	if *quick {
		base.TotalJobs = 1500
		*seeds = 1
	}
	var seedList []uint64
	for s := 1; s <= *seeds; s++ {
		seedList = append(seedList, uint64(s))
	}

	// The knob set DESIGN.md §14 documents: queue-trend weight, EWMA
	// half-life, divert spread, replication trend threshold, and the DS
	// candidate neighborhood.
	knobs := []tune.Knob{
		{Name: "queue_weight", Min: 0, Max: 1, Step: 0.1},
		{Name: "half_life", Min: 60, Max: 600, Step: 60},
		{Name: "spread_seconds", Min: 0, Max: 300, Step: 30},
		{Name: "trend_threshold", Min: 0, Max: 8, Step: 1},
		{Name: "ds_neighborhood", Min: 0, Max: 2, Step: 1},
	}
	def := base.Feedback
	start := []float64{def.QueueWeight, def.HalfLife, def.SpreadSeconds, def.TrendThreshold, float64(def.DSNeighborhood)}
	apply := func(cfg *core.Config, v []float64) {
		cfg.Feedback.QueueWeight = v[0]
		cfg.Feedback.HalfLife = v[1]
		cfg.Feedback.SpreadSeconds = v[2]
		cfg.Feedback.TrendThreshold = v[3]
		cfg.Feedback.DSNeighborhood = int(v[4])
	}

	simsPerEval := len(seedList)
	fmt.Fprintf(os.Stderr, "gridtune: tuning %d knobs, ≤%d evaluations × %d sims each (staleness %gs, %g MB/s)\n",
		len(knobs), *evals, simsPerEval, *staleness, *bandwidth)

	progress := obs.NewProgress(os.Stderr, "gridtune", *evals*simsPerEval)
	template := experiments.Campaign{
		Base:     base,
		Cells:    []experiments.Cell{{ES: base.ES, DS: base.DS, BandwidthMBps: base.BandwidthMBps}},
		Seeds:    seedList,
		Workers:  *workers,
		Progress: progress,
		DropRuns: true,
	}

	var logw *os.File
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridtune:", err)
			os.Exit(1)
		}
		defer f.Close()
		logw = f
	}

	opt := tune.Options{
		Seed:     *tunerSeed,
		MaxEvals: *evals,
		OnEval: func(ev tune.Eval) {
			marker := " "
			if ev.Best {
				marker = "*"
			}
			fmt.Fprintf(os.Stderr, "gridtune: eval %2d%s score %8.1f  %v\n", ev.Eval, marker, ev.Score, ev.Values)
		},
	}
	if logw != nil {
		opt.Log = logw
	}

	res, err := tune.HillClimb(knobs, start, tune.CampaignObjective(template, apply), opt)
	progress.Finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridtune:", err)
		os.Exit(1)
	}

	fmt.Printf("best mean response: %.1f s after %d evaluations (%d passes)\n", res.BestScore, res.Evals, res.Passes)
	for i, k := range knobs {
		fmt.Printf("  %-16s = %g\n", k.Name, res.Best[i])
	}
	if *baseline {
		cfg := base
		cfg.ES = "JobDataPresent"
		cfg.DS = "DataLeastLoaded"
		sum := 0.0
		for _, seed := range seedList {
			c := cfg
			c.Seed = seed
			r, err := core.RunConfig(c)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridtune:", err)
				os.Exit(1)
			}
			sum += r.AvgResponseSec
		}
		fmt.Printf("static baseline (JobDataPresent+DataLeastLoaded): %.1f s\n", sum/float64(len(seedList)))
	}
}
