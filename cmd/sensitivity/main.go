// Command sensitivity sweeps the model parameters the paper's Table 1
// leaves unspecified (storage capacity, geometric popularity, DS cadence
// and threshold, GIS staleness) and reports how the headline comparison —
// decoupled JobDataPresent+DataLeastLoaded vs the best coupled baseline
// JobLocal+DataDoNothing — responds. This is the calibration study behind
// the defaults documented in DESIGN.md.
//
//	sensitivity                  # sweep everything (CSV to stdout)
//	sensitivity -param storage   # one parameter
package main

import (
	"flag"
	"fmt"
	"os"

	"chicsim/internal/core"
	"chicsim/internal/experiments"
)

type sweep struct {
	name   string
	values []float64
	apply  func(*core.Config, float64)
}

func sweeps() []sweep {
	return []sweep{
		{
			name:   "storage",
			values: []float64{10, 15, 25, 50, 100, 0}, // GB; 0 = unlimited
			apply:  func(c *core.Config, v float64) { c.StorageGB = v },
		},
		{
			name:   "geomp",
			values: []float64{0.02, 0.05, 0.1, 0.2, 0.4},
			apply:  func(c *core.Config, v float64) { c.GeomP = v },
		},
		{
			name:   "ds-threshold",
			values: []float64{1, 3, 6, 12, 24},
			apply:  func(c *core.Config, v float64) { c.DSThreshold = int(v) },
		},
		{
			name:   "ds-interval",
			values: []float64{60, 150, 300, 600, 1200},
			apply:  func(c *core.Config, v float64) { c.DSInterval = v },
		},
		{
			name:   "staleness",
			values: []float64{0, 15, 30, 120, 600},
			apply:  func(c *core.Config, v float64) { c.InfoStaleness = v },
		},
		{
			name:   "bandwidth",
			values: []float64{5, 10, 25, 50, 100},
			apply:  func(c *core.Config, v float64) { c.BandwidthMBps = v },
		},
	}
}

func main() {
	param := flag.String("param", "all", "parameter to sweep: storage, geomp, ds-threshold, ds-interval, staleness, bandwidth, all")
	seeds := flag.Int("seeds", 2, "seed replications per point")
	jobs := flag.Int("jobs", 3000, "jobs per simulation (Table 1 uses 6000)")
	flag.Parse()

	var seedList []uint64
	for s := 1; s <= *seeds; s++ {
		seedList = append(seedList, uint64(s))
	}

	fmt.Println("param,value,policy,avg_response_s,avg_data_mb_per_job,idle_pct,site_job_gini")
	ran := false
	for _, sw := range sweeps() {
		if *param != "all" && *param != sw.name {
			continue
		}
		ran = true
		for _, v := range sw.values {
			base := core.DefaultConfig()
			base.TotalJobs = *jobs
			sw.apply(&base, v)
			cells := []experiments.Cell{
				{ES: "JobDataPresent", DS: "DataLeastLoaded", BandwidthMBps: base.BandwidthMBps},
				{ES: "JobLocal", DS: "DataDoNothing", BandwidthMBps: base.BandwidthMBps},
			}
			results := experiments.Run(experiments.Campaign{Base: base, Cells: cells, Seeds: seedList})
			for _, cr := range results {
				if cr.Err != nil {
					fmt.Fprintf(os.Stderr, "sensitivity: %s=%g %v: %v\n", sw.name, v, cr.Cell, cr.Err)
					continue
				}
				gini := 0.0
				for _, run := range cr.Runs {
					gini += run.SiteJobGini
				}
				gini /= float64(len(cr.Runs))
				fmt.Printf("%s,%g,%s+%s,%.1f,%.1f,%.1f,%.3f\n",
					sw.name, v, cr.Cell.ES, cr.Cell.DS,
					cr.AvgResponseSec, cr.AvgDataPerJobMB, 100*cr.AvgIdleFrac, gini)
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "sensitivity: unknown parameter %q\n", *param)
		os.Exit(2)
	}
}
