// Command chicsim runs a single Data Grid simulation and prints its
// measurements.
//
// Example (the paper's Table 1 scenario 1 with the winning pair):
//
//	chicsim -es JobDataPresent -ds DataLeastLoaded -bw 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"chicsim/internal/core"
	"chicsim/internal/netsim"
	"chicsim/internal/obs"
	"chicsim/internal/obs/monitor"
	"chicsim/internal/obs/registry"
	"chicsim/internal/obs/watchdog"
	"chicsim/internal/report"
	"chicsim/internal/trace"
	"chicsim/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.Sites, "sites", cfg.Sites, "number of sites")
	flag.IntVar(&cfg.Users, "users", cfg.Users, "number of users")
	flag.IntVar(&cfg.Files, "files", cfg.Files, "number of datasets")
	flag.IntVar(&cfg.TotalJobs, "jobs", cfg.TotalJobs, "total jobs")
	flag.IntVar(&cfg.MinCEs, "min-ces", cfg.MinCEs, "min compute elements per site")
	flag.IntVar(&cfg.MaxCEs, "max-ces", cfg.MaxCEs, "max compute elements per site")
	flag.IntVar(&cfg.RegionFanout, "fanout", cfg.RegionFanout, "sites per regional center")
	tiers := flag.String("tiers", "", "comma-separated fanouts for a multi-tier tree (e.g. 2,3,2); product must equal -sites")
	flag.Float64Var(&cfg.CPUSpreadFrac, "cpu-spread", cfg.CPUSpreadFrac, "per-site CPU speed spread in [0,1) (0 = paper's homogeneous processors)")
	flag.Float64Var(&cfg.BandwidthMBps, "bw", cfg.BandwidthMBps, "link bandwidth (MB/s)")
	flag.Float64Var(&cfg.BackboneMBps, "backbone", cfg.BackboneMBps, "backbone link bandwidth (MB/s, 0 = same as -bw)")
	flag.Float64Var(&cfg.ThinkTimeMean, "think", cfg.ThinkTimeMean, "mean user think time between jobs (s, 0 = paper's immediate resubmission)")
	flag.Float64Var(&cfg.ArrivalRate, "arrival-rate", cfg.ArrivalRate, "open-model per-user Poisson submission rate (jobs/s, 0 = paper's closed model)")
	flag.Float64Var(&cfg.StorageGB, "storage", cfg.StorageGB, "per-site storage (GB, <=0 unlimited)")
	flag.Float64Var(&cfg.GeomP, "geom-p", cfg.GeomP, "geometric popularity parameter")
	flag.IntVar(&cfg.InputsPerJob, "inputs", cfg.InputsPerJob, "input files per job")
	flag.Float64Var(&cfg.UserFocus, "user-focus", cfg.UserFocus, "fraction of requests drawn from per-user working sets (0 = paper)")
	flag.Float64Var(&cfg.OutputFraction, "output", cfg.OutputFraction, "job output size as a fraction of input (0 = paper, costs ignored)")
	flag.StringVar(&cfg.ES, "es", cfg.ES, "external scheduler algorithm")
	flag.StringVar(&cfg.BatchES, "batch-es", cfg.BatchES, "use a centralized batch heuristic instead of -es (BatchMinMin, BatchMaxMin, BatchSufferage)")
	flag.Float64Var(&cfg.BatchWindow, "batch-window", cfg.BatchWindow, "batch scheduling window (s; required with -batch-es)")
	flag.StringVar(&cfg.LS, "ls", cfg.LS, "local scheduler algorithm")
	flag.StringVar(&cfg.DS, "ds", cfg.DS, "dataset scheduler algorithm")
	flag.Float64Var(&cfg.DSInterval, "ds-interval", cfg.DSInterval, "dataset scheduler wake interval (s)")
	flag.IntVar(&cfg.DSThreshold, "ds-threshold", cfg.DSThreshold, "popularity threshold for replication")
	flag.IntVar(&cfg.DSDeleteAfter, "ds-delete-after", cfg.DSDeleteAfter, "DS deletes replicas idle for this many windows (0 = LRU only)")
	flag.Float64Var(&cfg.MaxTime, "max-time", cfg.MaxTime, "abort after this virtual time (0 = none)")
	flag.StringVar(&cfg.ResultMode, "result-mode", cfg.ResultMode, "result collection: full (per-job records) or bounded (constant-memory sketches; exact aggregates identical)")
	flag.Float64Var(&cfg.InfoStaleness, "staleness", cfg.InfoStaleness, "GIS snapshot staleness (s, 0 = oracle)")
	flag.BoolVar(&cfg.RegionalInfo, "regional-info", cfg.RegionalInfo, "schedulers see only in-region replicas plus masters")
	flag.Float64Var(&cfg.Faults.SiteCrash.MTBF, "site-mtbf", cfg.Faults.SiteCrash.MTBF, "mean time between site crashes (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.SiteCrash.MTTR, "site-mttr", 600, "mean site repair time (s, with -site-mtbf)")
	flag.Float64Var(&cfg.Faults.CEFailure.MTBF, "ce-mtbf", cfg.Faults.CEFailure.MTBF, "mean time between compute-element failures (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.CEFailure.MTTR, "ce-mttr", 300, "mean compute-element repair time (s, with -ce-mtbf)")
	flag.Float64Var(&cfg.Faults.LinkDegrade.MTBF, "link-mtbf", cfg.Faults.LinkDegrade.MTBF, "mean time between link degradations (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.LinkDegrade.MTTR, "link-mttr", 600, "mean link degradation repair time (s, with -link-mtbf)")
	flag.Float64Var(&cfg.Faults.LinkOutage.MTBF, "outage-mtbf", cfg.Faults.LinkOutage.MTBF, "mean time between link outages (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.LinkOutage.MTTR, "outage-mttr", 300, "mean link outage repair time (s, with -outage-mtbf)")
	flag.Float64Var(&cfg.Faults.TransferAbort.MTBF, "abort-mtbf", cfg.Faults.TransferAbort.MTBF, "mean time between transfer aborts (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.ReplicaLoss.MTBF, "loss-mtbf", cfg.Faults.ReplicaLoss.MTBF, "mean time between cached-replica losses (s, 0 = off)")
	flag.Float64Var(&cfg.Faults.DegradeFactor, "degrade-factor", cfg.Faults.DegradeFactor, "bandwidth multiplier a degraded link runs at (0 = default 0.1)")
	flag.IntVar(&cfg.Faults.MaxRetries, "fault-retries", cfg.Faults.MaxRetries, "ES resubmissions before abandoning a failed job (0 = default 3, -1 = none)")
	flag.BoolVar(&cfg.Faults.RequeueOnRecovery, "fault-requeue", cfg.Faults.RequeueOnRecovery, "crashed sites keep queued jobs and requeue them on recovery")
	flag.BoolVar(&cfg.Faults.RestoreReplicas, "fault-restore", cfg.Faults.RestoreReplicas, "DS re-replicates popular files lost to faults")
	maxmin := flag.Bool("maxmin", false, "use max-min fair bandwidth sharing instead of equal share")
	zipf := flag.Float64("zipf", 0, "use Zipf popularity with this alpha instead of geometric")
	uniformPop := flag.Bool("uniform-pop", false, "use uniform dataset popularity")
	mapping := flag.String("mapping", "per-site", "user->ES mapping: per-site, central, per-user")
	tracePath := flag.String("trace", "", "replay a workload trace file instead of generating")
	listAlgos := flag.Bool("list", false, "list available algorithms and scenarios, then exit")
	scenario := flag.String("scenario", "", "start from a named preset (see -list); model flags given before -scenario are ignored")
	heatmap := flag.Bool("heatmap", false, "render a per-site occupancy heatmap of the run")
	hist := flag.Bool("hist", false, "render the response-time histogram of the run")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	configPath := flag.String("config", "", "load the model configuration from a JSON file (model flags are then ignored)")
	saveConfig := flag.String("save-config", "", "write the effective configuration to this file and exit")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		cfg, err = core.LoadConfig(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
	}

	if *listAlgos {
		fmt.Println("External schedulers:", core.ExternalNames())
		fmt.Println("Batch schedulers:   ", core.BatchNames())
		fmt.Println("Local schedulers:   ", core.LocalNames())
		fmt.Println("Dataset schedulers: ", core.DatasetNames())
		fmt.Println("Scenarios:")
		for _, name := range core.ScenarioNames() {
			fmt.Printf("  %-18s %s\n", name, core.ScenarioDescription(name))
		}
		return
	}
	if *scenario != "" {
		loaded, err := core.Scenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(2)
		}
		cfg = loaded
	}
	if *maxmin {
		cfg.Sharing = netsim.MaxMinFair
	}
	if *zipf > 0 {
		cfg.Popularity = workload.Zipf
		cfg.ZipfAlpha = *zipf
	}
	if *uniformPop {
		cfg.Popularity = workload.Uniform
	}
	switch *mapping {
	case "per-site":
		cfg.Mapping = core.ESPerSite
	case "central":
		cfg.Mapping = core.ESCentral
	case "per-user":
		cfg.Mapping = core.ESPerUser
	default:
		fmt.Fprintf(os.Stderr, "chicsim: unknown mapping %q\n", *mapping)
		os.Exit(2)
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		w, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		cfg.Trace = w
	}

	if *saveConfig != "" {
		f, err := os.Create(*saveConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		err = cfg.WriteJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "chicsim: wrote configuration to %s\n", *saveConfig)
		return
	}
	if *tiers != "" {
		cfg.Tiers = nil
		for _, part := range strings.Split(*tiers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "chicsim: bad -tiers value %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Tiers = append(cfg.Tiers, n)
		}
	}
	if *heatmap {
		cfg.SampleInterval = 60
	}
	if obsFlags.SeriesPath != "" || obsFlags.StreamPath != "" {
		cfg.ObsInterval = obsFlags.SeriesInterval
	}

	// Live control plane: a metrics registry when anything wants to read
	// it, a watchdog when asked for. Both need the obs tick.
	wdMode, err := watchdog.ParseMode(obsFlags.WatchdogMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chicsim:", err)
		os.Exit(2)
	}
	var reg *registry.Registry
	if obsFlags.ListenAddr != "" || obsFlags.MetricsPath != "" {
		reg = registry.New()
		cfg.Metrics = reg
	}
	cfg.Watchdog = wdMode
	if (reg != nil || wdMode != watchdog.Off) && cfg.ObsInterval == 0 {
		cfg.ObsInterval = obsFlags.SeriesInterval
	}
	var srv *monitor.Server
	if obsFlags.ListenAddr != "" {
		var extra map[string]http.Handler
		if obsFlags.Pprof {
			extra = monitor.PprofHandlers()
		}
		srv, err = monitor.StartMux(obsFlags.ListenAddr, reg, func() any {
			return map[string]any{
				"command": "chicsim", "seed": cfg.Seed,
				"es": cfg.ES, "ls": cfg.LS, "ds": cfg.DS,
			}
		}, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "chicsim: monitor listening on http://%s (/metrics /status /events)\n", srv.Addr())
	}
	if wdMode != watchdog.Off {
		cfg.OnViolation = func(v watchdog.Violation) {
			fmt.Fprintln(os.Stderr, "chicsim: watchdog:", v)
			if srv != nil {
				srv.Publish("violation", v)
			}
		}
	}
	streamSink, closeStream, err := obsFlags.OpenStreamSink()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chicsim:", err)
		os.Exit(1)
	}
	cfg.ObsSink = streamSink

	var traceRec *trace.StreamRecorder
	var closeTrace func() error
	if obsFlags.TracePath != "" {
		w, err := trace.CreateWriter(obsFlags.TracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		traceRec = trace.NewStreamRecorder(w)
		cfg.Recorder = traceRec
		closeTrace = func() error {
			if err := traceRec.Flush(); err != nil {
				w.Close()
				return err
			}
			return w.Close()
		}
	}

	var manifest *obs.Manifest
	if obsFlags.ManifestPath != "" {
		var err error
		manifest, err = obs.NewManifest("chicsim", cfg, []uint64{cfg.Seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
	}
	stopProfiling, err := obsFlags.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chicsim:", err)
		os.Exit(1)
	}

	// On SIGINT/SIGTERM, flush every open artifact (sample stream, trace,
	// manifest marked interrupted) before exiting, so a cancelled run still
	// leaves usable partial output. A second signal force-kills.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "chicsim: interrupted; flushing partial output")
		if closeStream != nil {
			closeStream()
		}
		if closeTrace != nil {
			closeTrace()
		}
		if manifest != nil {
			manifest.MarkInterrupted()
			manifest.Finish()
			if err := manifest.WriteFile(obsFlags.ManifestPath); err != nil {
				fmt.Fprintln(os.Stderr, "chicsim:", err)
			}
		}
		if srv != nil {
			srv.Close()
		}
		os.Exit(130)
	}()

	res, err := core.RunConfig(cfg)
	if perr := stopProfiling(); perr != nil {
		fmt.Fprintln(os.Stderr, "chicsim:", perr)
	}
	if closeStream != nil {
		if cerr := closeStream(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if closeTrace != nil {
		if terr := closeTrace(); terr != nil && err == nil {
			err = terr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chicsim:", err)
		os.Exit(1)
	}
	if traceRec != nil {
		fmt.Fprintf(os.Stderr, "chicsim: wrote %d trace events to %s\n", traceRec.Recorded(), obsFlags.TracePath)
	}
	if obsFlags.SeriesPath != "" {
		f, err := os.Create(obsFlags.SeriesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		report.SeriesCSV(f, res.Series)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		samples := 0
		if res.Series != nil {
			samples = len(res.Series.Points)
		}
		fmt.Fprintf(os.Stderr, "chicsim: wrote %d probe samples to %s\n", samples, obsFlags.SeriesPath)
	}
	if manifest != nil {
		manifest.Finish()
		if err := manifest.WriteFile(obsFlags.ManifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
	}
	if obsFlags.MetricsPath != "" {
		f, err := os.Create(obsFlags.MetricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		werr := registry.WritePrometheus(f, reg.Gather())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "chicsim: wrote metrics snapshot to %s\n", obsFlags.MetricsPath)
	}
	if *jsonOut {
		res.Samples = nil // keep the JSON compact
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "chicsim:", err)
			os.Exit(1)
		}
		return
	}
	printResults(res)
	if *hist {
		fmt.Println()
		report.ResponseHistogram(os.Stdout, res.RespHistCounts, res.RespHistEdges, 60)
	}
	if res.ResultMode == core.ResultModeBounded {
		fmt.Println()
		report.HotItems(os.Stdout, "site", res.TopSites)
		fmt.Println()
		report.HotItems(os.Stdout, "dataset", res.TopDatasets)
	}
	if *heatmap {
		fmt.Println()
		report.Heatmap(os.Stdout, res.Samples, 100)
		fmt.Println()
		report.Timeline(os.Stdout, res.Samples, 100)
	}
}

func printResults(r core.Results) {
	fmt.Printf("scenario: ES=%s LS=%s DS=%s bw=%gMB/s seed=%d\n", r.ES, r.LS, r.DS, r.BandwidthMBps, r.Seed)
	fmt.Printf("jobs done:             %d (completed=%v)\n", r.JobsDone, r.Completed)
	fmt.Printf("makespan:              %.0f s\n", r.Makespan)
	fmt.Printf("avg response time:     %.1f s   (median %.1f, p95 %.1f)\n", r.AvgResponseSec, r.MedResponseSec, r.P95ResponseSec)
	if r.ResultMode == core.ResultModeBounded {
		fmt.Printf("result mode:           bounded (min %.1f, max %.1f exact; quantiles ±%.0f%%, %d exemplar rows)\n",
			r.MinResponseSec, r.MaxResponseSec, 100*r.RespQuantileRelErr, len(r.Exemplars))
	}
	fmt.Printf("avg queue wait:        %.1f s\n", r.AvgQueueWait)
	fmt.Printf("response breakdown:    dispatch %.1f + data %.1f + cpu %.1f + exec %.1f s\n",
		r.AvgDispatchWaitSec, r.AvgDataWaitSec, r.AvgCPUWaitSec, r.AvgExecSec)
	fmt.Printf("avg data moved/job:    %.1f MB  (fetch %.1f + replication %.1f + output %.1f)\n",
		r.AvgDataPerJobMB, r.FetchMBPerJob, r.ReplMBPerJob, r.OutputMBPerJob)
	fmt.Printf("processor idle time:   %.1f%%  (over %d CEs)\n", 100*r.IdleFrac, r.TotalCEs)
	fmt.Printf("fetches:               %d started, cache %d hits / %d misses, %d evictions\n",
		r.FetchesStarted, r.CacheHits, r.CacheMisses, r.Evictions)
	fmt.Printf("replications:          %d pushes\n", r.Replications)
	if r.Faults.FaultsInjected > 0 || r.JobsFailed > 0 {
		fmt.Printf("faults injected:       %d (site %d, CE %d, link %d+%d, abort %d, loss %d), %d repairs\n",
			r.Faults.FaultsInjected, r.Faults.SiteCrashes, r.Faults.CEFailures,
			r.Faults.LinkDegradations, r.Faults.LinkOutages,
			r.Faults.TransfersAborted, r.Faults.ReplicasLost, r.Faults.Repairs)
		fmt.Printf("fault recovery:        %d retries, %d jobs abandoned, %d fetches restarted, %d replicas restored\n",
			r.JobsRetried, r.JobsFailed, r.TransfersRestarted, r.ReplicasRestored)
	}
	if r.WatchdogViolations > 0 {
		fmt.Printf("watchdog:              %d invariant violations\n", r.WatchdogViolations)
	}
	fmt.Printf("simulation:            %d events, virtual end %.0f s\n", r.SimEvents, r.SimEndTime)
}
