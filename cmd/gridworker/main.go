// Command gridworker is a campaign fabric worker daemon: it registers
// with a griddispatch dispatcher, pulls shard jobs whenever it has free
// capacity, executes each shard through the ordinary experiments.Run
// path, heartbeats while executing, and uploads CellRecords.
//
// Usage:
//
//	gridworker -dispatcher http://host:7171 -capacity 4 -listen :7172
//
// By default the daemon exits once the current campaign merges; -stay
// keeps it polling for future campaigns. -manifest writes a worker-side
// run manifest recording which shards this worker produced. -listen
// serves the worker's own monitor surface: /metrics (busy slots, upload
// outcomes/latency, heartbeats) and /status (what it is executing).
// Logs are structured (-log-level, -log-format).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	"chicsim/internal/experiments"
	"chicsim/internal/fabric"
	"chicsim/internal/obs"
	"chicsim/internal/obs/logging"
	"chicsim/internal/obs/monitor"
)

func main() {
	dispatcher := flag.String("dispatcher", "http://127.0.0.1:7171", "dispatcher base URL")
	name := flag.String("name", "", "worker name for logs and provenance (default host:pid)")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "shards executed concurrently")
	stay := flag.Bool("stay", false, "keep polling for new campaigns after the current one merges")
	listen := flag.String("listen", "", "serve the worker's /metrics and /status on this address")
	manifestOut := flag.String("manifest", "", "write a worker run manifest (shards produced) to this file")
	quiet := flag.Bool("quiet", false, "suppress per-shard log lines (same as -log-level error)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/ on -listen")
	logFlags := logging.BindFlags(flag.CommandLine)
	flag.Parse()

	if *quiet {
		logFlags.Level = "error"
	}
	logger, err := logFlags.Logger("gridworker")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridworker:", err)
		os.Exit(1)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	logger = logger.With("worker_name", *name)

	var mu sync.Mutex
	var produced []obs.ShardProvenance
	w := &fabric.Worker{
		Dispatcher: *dispatcher,
		Name:       *name,
		Capacity:   *capacity,
		KeepAlive:  *stay,
		Logger:     logger,
		OnShardDone: func(shard fabric.Shard, _ experiments.CellRecord) {
			mu.Lock()
			produced = append(produced, obs.ShardProvenance{
				Index: shard.Index, Cell: shard.Cell.String(), Worker: *name,
			})
			mu.Unlock()
		},
	}

	if *listen != "" {
		var extra map[string]http.Handler
		if *pprofOn {
			extra = monitor.PprofHandlers()
		}
		srv, err := monitor.StartMux(*listen, w.Metrics(), func() any { return w.Status() }, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridworker:", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("monitor listening", "addr", srv.Addr(), "routes", "/metrics /status /events")
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		logger.Warn("interrupted; abandoning leases")
		cancel()
	}()

	var manifest *obs.Manifest
	if *manifestOut != "" {
		var err error
		manifest, err = obs.NewManifest("gridworker", map[string]any{"dispatcher": *dispatcher}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridworker:", err)
			os.Exit(1)
		}
		host, _ := os.Hostname()
		manifest.SetExtra("worker", *name)
		manifest.SetExtra("host", host)
		manifest.SetExtra("capacity", *capacity)
	}

	err = w.Run(ctx)
	if manifest != nil {
		mu.Lock()
		manifest.SetShards(produced)
		mu.Unlock()
		if err != nil {
			manifest.MarkInterrupted()
		}
		manifest.Finish()
		if werr := manifest.WriteFile(*manifestOut); werr != nil {
			fmt.Fprintln(os.Stderr, "gridworker:", werr)
		}
	}
	if err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "gridworker:", err)
		os.Exit(1)
	}
}
