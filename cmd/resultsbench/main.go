// Command resultsbench runs the results-pipeline memory benchmark (the
// same BenchmarkResultsMemory bodies the repo-root suite exercises)
// through testing.Benchmark and writes BENCH_results_mem.json, so the
// bounded-result-mode O(1)-memory claim is tracked across PRs: full mode
// retains one JobRecord per job while bounded mode retains a fixed few
// tens of kilobytes of sketches, visible in the live-results-bytes
// column.
//
//	resultsbench -o BENCH_results_mem.json          # run and record
//	resultsbench -prev BENCH_results_mem.json       # run, diff a baseline
//
// With -prev, a delta table is printed and each result carries
// baseline_ns_per_op/speedup fields, making regressions visible in both
// CI logs and the committed artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"chicsim/internal/core"
	"chicsim/internal/kernelbench"
)

type result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`

	// Filled when -prev supplies a baseline containing the same name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

type report struct {
	Suite     string   `json:"suite"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Jobs      int      `json:"jobs"`
	Results   []result `json:"results"`
}

func main() {
	outPath := flag.String("o", "BENCH_results_mem.json", "output JSON path")
	prevPath := flag.String("prev", "", "baseline BENCH_results_mem.json to diff against")
	jobs := flag.Int("jobs", 1_000_000, "synthetic completed jobs per iteration")
	flag.Parse()

	var baseline map[string]result
	if *prevPath != "" {
		buf, err := os.ReadFile(*prevPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resultsbench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var prev report
		if err := json.Unmarshal(buf, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "resultsbench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		baseline = make(map[string]result, len(prev.Results))
		for _, r := range prev.Results {
			baseline[r.Name] = r
		}
	}

	rep := report{Suite: "results-mem", GoVersion: runtime.Version(), GOARCH: runtime.GOARCH, Jobs: *jobs}
	for _, mode := range []string{core.ResultModeFull, core.ResultModeBounded} {
		name := "ResultsMemory/" + mode
		br := testing.Benchmark(kernelbench.ResultsMemory(mode, *jobs))
		r := result{
			Name:        name,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Iterations:  br.N,
			Extra:       br.Extra,
		}
		if base, ok := baseline[name]; ok && base.NsPerOp > 0 && r.NsPerOp > 0 {
			r.BaselineNsPerOp = base.NsPerOp
			r.Speedup = base.NsPerOp / r.NsPerOp
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-24s %14.1f ns/op %12d B/op %6d allocs/op", r.Name,
			r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %14.0f %s", v, k)
		}
		fmt.Println()
	}

	// The headline ratio: how much result memory bounded mode saves.
	full, bounded := rep.Results[0].Extra["live-results-bytes"], rep.Results[1].Extra["live-results-bytes"]
	if bounded > 0 {
		fmt.Printf("\nlive results memory at %d jobs: full %.1f MB, bounded %.1f KB (%.0fx smaller)\n",
			*jobs, full/1e6, bounded/1e3, full/bounded)
	}

	if baseline != nil {
		fmt.Printf("\n%-24s %14s %14s %9s\n", "name", "old ns/op", "new ns/op", "delta")
		for _, r := range rep.Results {
			if r.BaselineNsPerOp == 0 {
				continue
			}
			delta := (r.NsPerOp - r.BaselineNsPerOp) / r.BaselineNsPerOp * 100
			fmt.Printf("%-24s %14.1f %14.1f %+8.1f%%\n",
				r.Name, r.BaselineNsPerOp, r.NsPerOp, delta)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "resultsbench: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "resultsbench: write %s: %v\n", *outPath, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d benchmarks)\n", *outPath, len(rep.Results))
}
