// Command montecarlo quantifies seed-to-seed variance at scale: it runs
// one algorithm pair over many seeds in parallel and reports how the 95%
// confidence interval of the mean response time converges — the rigorous
// form of the paper's "we found no significance variation" (§5.2).
//
//	montecarlo -seeds 30
//	montecarlo -es JobLocal -ds DataDoNothing -seeds 50 -jobs 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"chicsim/internal/core"
	"chicsim/internal/stats"
)

func main() {
	cfg := core.DefaultConfig()
	flag.StringVar(&cfg.ES, "es", cfg.ES, "external scheduler")
	flag.StringVar(&cfg.DS, "ds", cfg.DS, "dataset scheduler")
	flag.Float64Var(&cfg.BandwidthMBps, "bw", cfg.BandwidthMBps, "link bandwidth (MB/s)")
	flag.IntVar(&cfg.TotalJobs, "jobs", cfg.TotalJobs, "jobs per run")
	seeds := flag.Int("seeds", 30, "number of independent seeds")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	flag.Parse()

	if *seeds < 2 {
		fmt.Fprintln(os.Stderr, "montecarlo: need at least 2 seeds")
		os.Exit(2)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	type outcome struct {
		seed uint64
		resp float64
		err  error
	}
	tasks := make(chan uint64)
	outs := make(chan outcome)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range tasks {
				c := cfg
				c.Seed = seed
				res, err := core.RunConfig(c)
				outs <- outcome{seed: seed, resp: res.AvgResponseSec, err: err}
			}
		}()
	}
	go func() {
		for s := 1; s <= *seeds; s++ {
			tasks <- uint64(s)
		}
		close(tasks)
		wg.Wait()
		close(outs)
	}()

	type point struct {
		seed uint64
		resp float64
	}
	var points []point
	for o := range outs {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "montecarlo: seed %d: %v\n", o.seed, o.err)
			os.Exit(1)
		}
		points = append(points, point{o.seed, o.resp})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].seed < points[j].seed })

	fmt.Printf("%s + %s @ %g MB/s, %d jobs/run, %d seeds\n\n",
		cfg.ES, cfg.DS, cfg.BandwidthMBps, cfg.TotalJobs, *seeds)
	fmt.Printf("%6s %14s %14s %12s\n", "seeds", "mean resp (s)", "95% CI ±", "CI/mean")
	var resps []float64
	for i, p := range points {
		resps = append(resps, p.resp)
		n := i + 1
		if n >= 2 && (n%5 == 0 || n == len(points)) {
			s := stats.Summarize(resps)
			fmt.Printf("%6d %14.1f %14.1f %11.1f%%\n", n, s.Mean, s.CI95, 100*s.CI95/s.Mean)
		}
	}
	final := stats.Summarize(resps)
	fmt.Printf("\nfinal: %s\n", final)
	fmt.Printf("coefficient of variation: %.1f%% — ", 100*stats.CoefficientOfVariation(resps))
	if stats.CoefficientOfVariation(resps) < 0.15 {
		fmt.Println("no significant seed variation (matches the paper's observation)")
	} else {
		fmt.Println("substantial seed variation; consider more replications")
	}
}
