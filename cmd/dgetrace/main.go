// Command dgetrace records and analyzes Data Grid execution (DGE) traces.
//
// With -run it executes a simulation and writes the DGE trace; with a file
// argument it loads a previously written trace, validates the DGE
// invariants (complete job lifecycles, balanced transfers), and prints the
// offline analysis. Trace files ending in .gz are gzipped transparently in
// both directions.
//
//	dgetrace -run -o dge.jsonl.gz -es JobDataPresent -ds DataLeastLoaded
//	dgetrace dge.jsonl.gz                  # summary + invariants
//	dgetrace -validate dge.jsonl.gz        # lifecycle + fault invariants only
//	dgetrace -spans 17 dge.jsonl.gz        # span tree of job 17
//	dgetrace -critpath dge.jsonl.gz        # whole-DGE critical path + decomposition
//	dgetrace -chrome dge.json dge.jsonl.gz # Chrome trace-event JSON (Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chicsim/internal/core"
	"chicsim/internal/trace"
)

func main() {
	run := flag.Bool("run", false, "run a simulation and record its trace")
	out := flag.String("o", "", "with -run: write the trace to this file (default stdout; .gz gzips)")
	esName := flag.String("es", "JobDataPresent", "with -run: external scheduler")
	dsName := flag.String("ds", "DataLeastLoaded", "with -run: dataset scheduler")
	jobs := flag.Int("jobs", 0, "with -run: override total jobs (0 = Table 1's 6000)")
	seed := flag.Uint64("seed", 1, "with -run: random seed")
	topN := flag.Int("top", 5, "analysis: show the N hottest files and sites")
	spans := flag.Int("spans", -1, "print the span tree of this job id (-1 = off)")
	critpath := flag.Bool("critpath", false, "print the whole-DGE critical path and response decomposition")
	chrome := flag.String("chrome", "", "export a Chrome trace-event JSON file to this path (view in Perfetto)")
	validate := flag.Bool("validate", false, "check lifecycle, transfer, and fault-injection invariants, then exit")
	flag.Parse()

	if *run {
		cfg := core.DefaultConfig()
		cfg.ES, cfg.DS, cfg.Seed = *esName, *dsName, *seed
		if *jobs > 0 {
			cfg.TotalJobs = *jobs
		}
		// Stream events straight to the sink: memory stays flat no matter
		// how long the execution runs.
		var rec *trace.StreamRecorder
		if *out != "" {
			w, err := trace.CreateWriter(*out)
			if err != nil {
				fatal(err)
			}
			rec = trace.NewStreamRecorder(w)
			cfg.Recorder = rec
			defer func() {
				if err := rec.Flush(); err != nil {
					fatal(err)
				}
				if err := w.Close(); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "dgetrace: wrote %d events to %s\n", rec.Recorded(), *out)
			}()
		} else {
			rec = trace.NewStreamRecorder(os.Stdout)
			cfg.Recorder = rec
			defer func() {
				if err := rec.Flush(); err != nil {
					fatal(err)
				}
			}()
		}
		if _, err := core.RunConfig(cfg); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dgetrace -run [-o file] | dgetrace [-validate|-spans N|-critpath|-chrome out.json] <trace.jsonl[.gz]>")
		os.Exit(2)
	}
	log, err := trace.OpenLog(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *validate {
		if _, err := trace.Analyze(log); err != nil {
			fatal(fmt.Errorf("trace INVALID: %w", err))
		}
		if err := trace.ValidateFaults(log); err != nil {
			fatal(fmt.Errorf("trace INVALID: %w", err))
		}
		fmt.Printf("trace OK: %d events, lifecycle + transfer + fault invariants hold\n", log.Len())
		return
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeTrace(f, log); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dgetrace: wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", *chrome)
		return
	}
	if *spans >= 0 {
		printSpans(log, *spans)
		return
	}
	if *critpath {
		printCritPath(log)
		return
	}

	a, err := trace.Analyze(log)
	if err != nil {
		fatal(fmt.Errorf("trace INVALID: %w", err))
	}
	fmt.Printf("DGE trace: %d events, %d jobs, makespan %.0f s — invariants OK\n",
		log.Len(), len(a.Jobs), a.Makespan)
	fmt.Printf("response time:    %s\n", a.Response)
	fmt.Printf("queue wait:       %s\n", a.QueueWait)
	fmt.Printf("data moved:       %.1f MB/job (fetch %.1f GB + replication %.1f GB, %d + %d transfers)\n",
		a.AvgDataPerJobMB(), a.FetchBytes/1e9, a.ReplBytes/1e9, a.FetchCount, a.ReplCount)
	fmt.Printf("replication:      %d pushes decided, %d evictions\n", a.PushCount, a.EvictCount)
	fmt.Printf("site-load Gini:   %.3f (0 = even, 1 = one hotspot)\n", a.SiteLoadGini())

	type kv struct {
		id int
		v  float64
	}
	var files []kv
	for f, b := range a.BytesPerFile {
		files = append(files, kv{f, b})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].v > files[j].v })
	fmt.Printf("hottest files by bytes moved:")
	for i := 0; i < len(files) && i < *topN; i++ {
		fmt.Printf(" f%d(%.1fGB)", files[i].id, files[i].v/1e9)
	}
	fmt.Println()

	var sites []kv
	for s, n := range a.JobsPerSite {
		sites = append(sites, kv{s, float64(n)})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].v > sites[j].v })
	fmt.Printf("busiest sites by jobs:")
	for i := 0; i < len(sites) && i < *topN; i++ {
		fmt.Printf(" s%d(%d)", sites[i].id, int(sites[i].v))
	}
	fmt.Println()
}

// printSpans renders one job's reconstructed span tree.
func printSpans(log *trace.Log, jobID int) {
	forest, err := trace.BuildSpans(log)
	if err != nil {
		fatal(fmt.Errorf("trace INVALID: %w", err))
	}
	t := forest.Job(jobID)
	if t == nil {
		fatal(fmt.Errorf("job %d not found among %d completed jobs", jobID, len(forest.Jobs)))
	}
	fmt.Printf("job %d (user %d, site %d, %d retries): response %.1f s\n",
		t.Job, t.User, t.Site, t.Retries, t.Response())
	d := t.Decomp
	fmt.Printf("decomposition: retry %.1f + data %.1f + queue %.1f + exec %.1f = %.1f s\n",
		d.Retry, d.Data, d.Queue, d.Exec, d.Response())
	printSpan(t.Root, 0)
}

func printSpan(s *trace.Span, depth int) {
	indent := strings.Repeat("  ", depth)
	detail := ""
	if s.File >= 0 {
		detail += fmt.Sprintf(" file=%d", s.File)
	}
	if s.Src >= 0 {
		detail += fmt.Sprintf(" %d→%d", s.Src, s.Dst)
	}
	if s.Bytes > 0 {
		detail += fmt.Sprintf(" %.0fMB", s.Bytes/1e6)
	}
	if s.Aborted {
		detail += " ABORTED"
	}
	fmt.Printf("%s%-9s [%10.1f, %10.1f] %8.1fs%s\n", indent, s.Kind, s.Start, s.End, s.Duration(), detail)
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}

// printCritPath renders the whole-DGE critical path and the aggregate
// response-time decomposition.
func printCritPath(log *trace.Log) {
	forest, err := trace.BuildSpans(log)
	if err != nil {
		fatal(fmt.Errorf("trace INVALID: %w", err))
	}
	st := forest.DecompStats()
	fmt.Printf("DGE: %d jobs completed, %d abandoned, makespan %.0f s\n",
		len(forest.Jobs), len(forest.Abandoned), forest.Makespan)
	fmt.Printf("mean response %.1f s = retry %.1f + data %.1f + queue %.1f + exec %.1f\n",
		st.MeanResponse, st.MeanRetry, st.MeanData, st.MeanQueue, st.MeanExec)
	fmt.Printf("response shares: retry %.1f%%, data %.1f%%, queue %.1f%%, exec %.1f%%\n",
		100*st.RetryShare, 100*st.DataShare, 100*st.QueueShare, 100*st.ExecShare)

	p := forest.CriticalPath()
	if p.User < 0 {
		fmt.Println("critical path: (no completed jobs)")
		return
	}
	fmt.Printf("critical path: user %d's chain of %d jobs, [%.1f, %.1f] (%.1f s)\n",
		p.User, len(p.Jobs), p.Start, p.End, p.Length())
	fmt.Printf("  retry %.1f + data %.1f + queue %.1f + exec %.1f + slack %.1f s\n",
		p.Retry, p.Data, p.Queue, p.Exec, p.Slack)
	frac := func(v float64) float64 {
		if p.Length() <= 0 {
			return 0
		}
		return 100 * v / p.Length()
	}
	fmt.Printf("  shares: retry %.1f%%, data %.1f%%, queue %.1f%%, exec %.1f%%, slack %.1f%%\n",
		frac(p.Retry), frac(p.Data), frac(p.Queue), frac(p.Exec), frac(p.Slack))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgetrace:", err)
	os.Exit(1)
}
