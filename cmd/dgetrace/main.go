// Command dgetrace records and analyzes Data Grid execution (DGE) traces.
//
// With -run it executes a simulation and writes the DGE trace; with a file
// argument it loads a previously written trace, validates the DGE
// invariants (complete job lifecycles, balanced transfers), and prints the
// offline analysis.
//
//	dgetrace -run -o dge.jsonl -es JobDataPresent -ds DataLeastLoaded
//	dgetrace dge.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chicsim/internal/core"
	"chicsim/internal/trace"
)

func main() {
	run := flag.Bool("run", false, "run a simulation and record its trace")
	out := flag.String("o", "", "with -run: write the trace to this file (default stdout)")
	esName := flag.String("es", "JobDataPresent", "with -run: external scheduler")
	dsName := flag.String("ds", "DataLeastLoaded", "with -run: dataset scheduler")
	jobs := flag.Int("jobs", 0, "with -run: override total jobs (0 = Table 1's 6000)")
	seed := flag.Uint64("seed", 1, "with -run: random seed")
	topN := flag.Int("top", 5, "analysis: show the N hottest files and sites")
	flag.Parse()

	var log *trace.Log
	switch {
	case *run:
		cfg := core.DefaultConfig()
		cfg.ES, cfg.DS, cfg.Seed = *esName, *dsName, *seed
		if *jobs > 0 {
			cfg.TotalJobs = *jobs
		}
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			dst = f
		}
		// Stream events straight to the file: memory stays flat no
		// matter how long the execution runs.
		rec := trace.NewStreamRecorder(dst)
		cfg.Recorder = rec
		if _, err := core.RunConfig(cfg); err != nil {
			fatal(err)
		}
		if err := rec.Flush(); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "dgetrace: wrote %d events to %s\n", rec.Recorded(), *out)
		}
		return
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		log, err = trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dgetrace -run [-o file] | dgetrace <trace.jsonl>")
		os.Exit(2)
	}

	a, err := trace.Analyze(log)
	if err != nil {
		fatal(fmt.Errorf("trace INVALID: %w", err))
	}
	fmt.Printf("DGE trace: %d events, %d jobs, makespan %.0f s — invariants OK\n",
		log.Len(), len(a.Jobs), a.Makespan)
	fmt.Printf("response time:    %s\n", a.Response)
	fmt.Printf("queue wait:       %s\n", a.QueueWait)
	fmt.Printf("data moved:       %.1f MB/job (fetch %.1f GB + replication %.1f GB, %d + %d transfers)\n",
		a.AvgDataPerJobMB(), a.FetchBytes/1e9, a.ReplBytes/1e9, a.FetchCount, a.ReplCount)
	fmt.Printf("replication:      %d pushes decided, %d evictions\n", a.PushCount, a.EvictCount)
	fmt.Printf("site-load Gini:   %.3f (0 = even, 1 = one hotspot)\n", a.SiteLoadGini())

	type kv struct {
		id int
		v  float64
	}
	var files []kv
	for f, b := range a.BytesPerFile {
		files = append(files, kv{f, b})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].v > files[j].v })
	fmt.Printf("hottest files by bytes moved:")
	for i := 0; i < len(files) && i < *topN; i++ {
		fmt.Printf(" f%d(%.1fGB)", files[i].id, files[i].v/1e9)
	}
	fmt.Println()

	var sites []kv
	for s, n := range a.JobsPerSite {
		sites = append(sites, kv{s, float64(n)})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].v > sites[j].v })
	fmt.Printf("busiest sites by jobs:")
	for i := 0; i < len(sites) && i < *topN; i++ {
		fmt.Printf(" s%d(%d)", sites[i].id, int(sites[i].v))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgetrace:", err)
	os.Exit(1)
}
