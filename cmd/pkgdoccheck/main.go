// Command pkgdoccheck fails when any Go package in the module lacks a
// package doc comment. It walks the tree (skipping testdata and hidden
// directories), parses each directory's non-test .go files, and requires
// at least one file to carry a doc comment attached to its package
// clause. CI runs this so the godoc landing page for every package stays
// non-empty.
//
// Usage:
//
//	pkgdoccheck [root]
//
// Exits 1 listing each undocumented package, 0 when all are documented.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	undocumented, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgdoccheck:", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		fmt.Fprintln(os.Stderr, "packages missing a package doc comment:")
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Println("pkgdoccheck: all packages documented")
}

// check returns the sorted list of directories under root that contain
// non-test .go files but no package doc comment on any of them.
func check(root string) ([]string, error) {
	dirs := make(map[string]bool) // dir -> has doc comment
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			dirs[dir] = true
		} else if _, seen := dirs[dir]; !seen {
			dirs[dir] = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var undocumented []string
	for dir, ok := range dirs {
		if !ok {
			undocumented = append(undocumented, dir)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}
