// Command obscheck validates observability artifacts produced by the
// campaign fabric, for use in smoke tests and CI:
//
//	obscheck -metrics dump.prom -require fabric_lease_expiries_total,fabric_shards_requeued_total
//	obscheck -timeline timeline.json -require-events lease_expired,requeued
//	obscheck -chrome fleet.json.gz -require-marker lease_expired -require-process "worker w"
//
// -metrics checks the file is well-formed Prometheus text exposition and
// that every -require metric is present with a positive value on at
// least one sample. -timeline checks the file decodes as a fabric
// timeline document with per-shard non-decreasing event times, and that
// every -require-events kind occurs. -chrome checks the file (gzipped
// when named .gz) is valid Chrome trace-event JSON whose lanes hold
// monotone, non-overlapping complete spans, and that the required
// instant marker and process names occur. Any violation exits nonzero
// with a diagnostic.
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"chicsim/internal/fabric"
	"chicsim/internal/obs/registry"
)

func main() {
	metrics := flag.String("metrics", "", "Prometheus text file to validate")
	require := flag.String("require", "", "comma-separated metric names that must have a positive sample (with -metrics)")
	timeline := flag.String("timeline", "", "fabric /api/timeline JSON file to validate")
	requireEvents := flag.String("require-events", "", "comma-separated event kinds that must occur (with -timeline)")
	chrome := flag.String("chrome", "", "Chrome trace-event JSON file to validate (.gz transparently gunzipped)")
	requireMarker := flag.String("require-marker", "", "instant-marker name that must occur (with -chrome)")
	requireProcess := flag.String("require-process", "", "substring some process_name must contain (with -chrome)")
	flag.Parse()

	ran := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		os.Exit(1)
	}
	if *metrics != "" {
		ran = true
		if err := checkMetrics(*metrics, splitList(*require)); err != nil {
			fail("%s: %v", *metrics, err)
		}
		fmt.Printf("obscheck: %s ok\n", *metrics)
	}
	if *timeline != "" {
		ran = true
		if err := checkTimeline(*timeline, splitList(*requireEvents)); err != nil {
			fail("%s: %v", *timeline, err)
		}
		fmt.Printf("obscheck: %s ok\n", *timeline)
	}
	if *chrome != "" {
		ran = true
		if err := checkChrome(*chrome, *requireMarker, *requireProcess); err != nil {
			fail("%s: %v", *chrome, err)
		}
		fmt.Printf("obscheck: %s ok\n", *chrome)
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -metrics, -timeline, or -chrome)")
		flag.Usage()
		os.Exit(2)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// open reads a whole file, gunzipping when the name ends in .gz.
func open(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("gunzip: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return io.ReadAll(r)
}

// checkMetrics validates Prometheus text exposition and required names.
func checkMetrics(path string, required []string) error {
	data, err := open(path)
	if err != nil {
		return err
	}
	if err := registry.CheckText(strings.NewReader(string(data))); err != nil {
		return err
	}
	// Positive-sample check: the metric exists and observed something.
	positive := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > 0 {
			positive[name] = true
		}
	}
	for _, name := range required {
		if !positive[name] {
			return fmt.Errorf("required metric %s missing or zero", name)
		}
	}
	return nil
}

// checkTimeline validates a fabric timeline document: shard events must
// be non-decreasing in time, attempts must not regress, and every
// required event kind must occur somewhere in the campaign.
func checkTimeline(path string, requiredKinds []string) error {
	data, err := open(path)
	if err != nil {
		return err
	}
	var doc fabric.TimelineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a timeline document: %w", err)
	}
	if len(doc.Shards) == 0 {
		return fmt.Errorf("timeline has no shards (campaign %q, phase %q)", doc.CampaignID, doc.Phase)
	}
	seen := make(map[string]bool)
	for _, sh := range doc.Shards {
		var prev time.Time
		prevAttempt := 0
		for i, ev := range sh.Events {
			if ev.Kind == "" || ev.T.IsZero() {
				return fmt.Errorf("shard %d event %d is blank (%+v)", sh.Index, i, ev)
			}
			if ev.T.Before(prev) {
				return fmt.Errorf("shard %d events not monotone: %s at %s after %s", sh.Index, ev.Kind, ev.T, prev)
			}
			if ev.Attempt < prevAttempt {
				return fmt.Errorf("shard %d attempt regressed at event %d (%d -> %d)", sh.Index, i, prevAttempt, ev.Attempt)
			}
			prev, prevAttempt = ev.T, ev.Attempt
			seen[ev.Kind] = true
		}
	}
	for _, kind := range requiredKinds {
		if !seen[kind] {
			return fmt.Errorf("required event kind %q never occurred", kind)
		}
	}
	return nil
}

// traceEvent mirrors the Chrome trace-event fields obscheck validates.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// checkChrome validates a Chrome trace-event file: per (pid, tid) lane,
// complete spans must be monotone and non-overlapping.
func checkChrome(path, requireMarker, requireProcess string) error {
	data, err := open(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not Chrome trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	type lane struct{ pid, tid int }
	spans := make(map[lane][]traceEvent)
	markerSeen, processSeen := false, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("span %q has negative duration %g", ev.Name, ev.Dur)
			}
			spans[lane{ev.Pid, ev.Tid}] = append(spans[lane{ev.Pid, ev.Tid}], ev)
		case "i":
			if ev.Name == requireMarker {
				markerSeen = true
			}
		case "M":
			if ev.Name == "process_name" && requireProcess != "" {
				if n, _ := ev.Args["name"].(string); strings.Contains(n, requireProcess) {
					processSeen = true
				}
			}
		}
	}
	for l, evs := range spans {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
		for i := 1; i < len(evs); i++ {
			prevEnd := evs[i-1].Ts + evs[i-1].Dur
			if evs[i].Ts < prevEnd {
				return fmt.Errorf("lane pid=%d tid=%d overlaps: %q at %g starts before %q ends at %g",
					l.pid, l.tid, evs[i].Name, evs[i].Ts, evs[i-1].Name, prevEnd)
			}
		}
	}
	if requireMarker != "" && !markerSeen {
		return fmt.Errorf("required marker %q never occurred", requireMarker)
	}
	if requireProcess != "" && !processSeen {
		return fmt.Errorf("no process_name contains %q", requireProcess)
	}
	return nil
}
