// Command kernelbench runs the simulation-kernel benchmark suite (the same
// bodies `go test -bench` exercises in internal/desim, internal/netsim and
// the repo root) through testing.Benchmark and writes BENCH_kernel.json,
// so the kernel's performance trajectory is tracked across PRs without
// parsing go-test output.
//
//	kernelbench -o BENCH_kernel.json          # run and record
//	kernelbench -prev BENCH_kernel.json       # run, diff against a baseline
//	kernelbench -prev ... -gate 15            # also fail on >15% ns/op regressions
//	kernelbench -only SimScale                # run one sub-suite (substring match)
//
// With -prev, a benchstat-style delta table is printed and each result
// carries baseline_ns_per_op/speedup fields, making regressions visible
// in both CI logs and the committed artifact. With -gate N, any benchmark
// whose ns/op regressed more than N% against the baseline fails the run
// with exit status 1 — the soft regression gate CI applies (override: the
// bench-regression-ok PR label, see DESIGN.md §18).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"chicsim/internal/kernelbench"
	"chicsim/internal/netsim"
)

type result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`

	// Filled when -prev supplies a baseline containing the same name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

type report struct {
	Suite     string   `json:"suite"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Results   []result `json:"results"`
}

// suite enumerates the kernel benchmarks in a fixed order. Flow counts
// mirror the go-test wrappers so names line up across both harnesses.
func suite() []struct {
	name string
	body func(*testing.B)
} {
	out := []struct {
		name string
		body func(*testing.B)
	}{
		{"EngineChurn", kernelbench.EngineChurn},
		{"EngineStep", kernelbench.EngineStep},
	}
	for _, p := range []struct {
		label  string
		policy netsim.SharingPolicy
	}{{"ReflowEqualShare", netsim.EqualShare}, {"ReflowMaxMin", netsim.MaxMinFair}} {
		for _, flows := range []int{10, 100, 1000} {
			out = append(out, struct {
				name string
				body func(*testing.B)
			}{fmt.Sprintf("%s/flows=%d", p.label, flows), kernelbench.Reflow(p.policy, flows)})
		}
	}
	out = append(out, struct {
		name string
		body func(*testing.B)
	}{"Sim", kernelbench.Sim})
	for _, tier := range []struct {
		name string
		jobs int
	}{{"10k", 10_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		out = append(out, struct {
			name string
			body func(*testing.B)
		}{"SimScale/" + tier.name, kernelbench.SimScale(tier.jobs)})
	}
	return out
}

func main() {
	outPath := flag.String("o", "BENCH_kernel.json", "output JSON path")
	prevPath := flag.String("prev", "", "baseline BENCH_kernel.json to diff against")
	skipSim := flag.Bool("skip-sim", false, "skip the end-to-end Sim benchmark")
	only := flag.String("only", "", "run only benchmarks whose name contains this substring")
	skip := flag.String("skip", "", "skip benchmarks whose name contains this substring")
	gate := flag.Float64("gate", 0, "with -prev: exit 1 if any ns/op regresses more than this percent (0 disables)")
	flag.Parse()

	var baseline map[string]result
	if *prevPath != "" {
		buf, err := os.ReadFile(*prevPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelbench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var prev report
		if err := json.Unmarshal(buf, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "kernelbench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		baseline = make(map[string]result, len(prev.Results))
		for _, r := range prev.Results {
			baseline[r.Name] = r
		}
	}

	rep := report{Suite: "kernel", GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	for _, bm := range suite() {
		if *skipSim && bm.name == "Sim" {
			continue
		}
		if *only != "" && !strings.Contains(bm.name, *only) {
			continue
		}
		if *skip != "" && strings.Contains(bm.name, *skip) {
			continue
		}
		br := testing.Benchmark(bm.body)
		r := result{
			Name:        bm.name,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Iterations:  br.N,
			Extra:       br.Extra,
		}
		if base, ok := baseline[bm.name]; ok && base.NsPerOp > 0 && r.NsPerOp > 0 {
			r.BaselineNsPerOp = base.NsPerOp
			r.Speedup = base.NsPerOp / r.NsPerOp
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op", r.Name,
			r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %12.0f %s", v, k)
		}
		fmt.Println()
	}

	var regressions []string
	if baseline != nil {
		fmt.Printf("\n%-28s %14s %14s %9s\n", "name", "old ns/op", "new ns/op", "delta")
		for _, r := range rep.Results {
			if r.BaselineNsPerOp == 0 {
				continue
			}
			delta := (r.NsPerOp - r.BaselineNsPerOp) / r.BaselineNsPerOp * 100
			fmt.Printf("%-28s %14.1f %14.1f %+8.1f%%\n",
				r.Name, r.BaselineNsPerOp, r.NsPerOp, delta)
			if *gate > 0 && delta > *gate {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% > %.0f%%)",
						r.Name, r.BaselineNsPerOp, r.NsPerOp, delta, *gate))
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelbench: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kernelbench: write %s: %v\n", *outPath, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d benchmarks)\n", *outPath, len(rep.Results))

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nkernelbench: %d benchmark(s) regressed past the %.0f%% gate:\n", len(regressions), *gate)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		fmt.Fprintln(os.Stderr, "If the slowdown is intended and justified, apply the bench-regression-ok label (see DESIGN.md §18) or refresh the committed baseline.")
		os.Exit(1)
	}
}
