// Command griddispatch runs the campaign fabric dispatcher: it owns the
// shard queue for one campaign at a time, leases shards to gridworker
// daemons, requeues shards whose worker died, and merges streamed
// CellRecords back into the canonical JSONL a single-process gridsweep
// run would have written.
//
// Usage:
//
//	griddispatch -listen :7171 -journal campaign.journal
//
// Submit work with `gridsweep -dispatch http://host:7171 ...` and start
// one or more `gridworker -dispatcher http://host:7171` daemons. The
// journal makes a partial campaign resumable: restart griddispatch with
// the same -journal and completed shards are not re-run.
//
// The listener also serves the monitor surface: /metrics (Prometheus,
// including shard-state and worker-liveness gauges), /status (fabric
// state JSON), /api/timeline (per-shard event history), /api/fleet
// (live fleet status), /events (SSE shard lifecycle + fleet events).
// Logs are structured (-log-level, -log-format) with campaign, shard,
// and worker attributes on every line.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"chicsim/internal/fabric"
	"chicsim/internal/obs/logging"
	"chicsim/internal/obs/monitor"
)

func main() {
	listen := flag.String("listen", ":7171", "dispatcher listen address")
	journal := flag.String("journal", "", "queue journal path (JSONL); resumes the campaign in it if present")
	lease := flag.Float64("lease", 60, "shard lease duration (s); a worker silent this long forfeits its shards")
	maxAttempts := flag.Int("max-attempts", 5, "bookings per shard before it is abandoned as failed")
	mergedOut := flag.String("out", "", "also write the merged canonical JSONL stream to this file")
	manifestOut := flag.String("manifest", "", "write a merged run manifest (worker/shard provenance) to this file")
	quiet := flag.Bool("quiet", false, "suppress per-shard log lines (same as -log-level error)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/ on the listener")
	logFlags := logging.BindFlags(flag.CommandLine)
	flag.Parse()

	if *quiet {
		logFlags.Level = "error"
	}
	logger, err := logFlags.Logger("griddispatch")
	if err != nil {
		fmt.Fprintln(os.Stderr, "griddispatch:", err)
		os.Exit(1)
	}

	d, err := fabric.NewDispatcher(fabric.Options{
		LeaseSeconds: *lease,
		MaxAttempts:  *maxAttempts,
		JournalPath:  *journal,
		MergedPath:   *mergedOut,
		ManifestPath: *manifestOut,
		Logger:       logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "griddispatch:", err)
		os.Exit(1)
	}
	var extra []map[string]http.Handler
	if *pprofOn {
		extra = append(extra, monitor.PprofHandlers())
	}
	srv, err := fabric.Serve(*listen, d, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "griddispatch:", err)
		os.Exit(1)
	}
	logger.Info("listening", "addr", srv.Addr(),
		"routes", "/api /api/timeline /api/fleet /metrics /status /events",
		slog.Float64("lease_s", *lease))

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	logger.Info("shutting down (journal keeps completed shards)")
	srv.Close()
}
