// Command griddispatch runs the campaign fabric dispatcher: it owns the
// shard queue for one campaign at a time, leases shards to gridworker
// daemons, requeues shards whose worker died, and merges streamed
// CellRecords back into the canonical JSONL a single-process gridsweep
// run would have written.
//
// Usage:
//
//	griddispatch -listen :7171 -journal campaign.journal
//
// Submit work with `gridsweep -dispatch http://host:7171 ...` and start
// one or more `gridworker -dispatcher http://host:7171` daemons. The
// journal makes a partial campaign resumable: restart griddispatch with
// the same -journal and completed shards are not re-run.
//
// The listener also serves the monitor surface: /metrics (Prometheus),
// /status (fabric state JSON), /events (SSE shard lifecycle events).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"chicsim/internal/fabric"
)

func main() {
	listen := flag.String("listen", ":7171", "dispatcher listen address")
	journal := flag.String("journal", "", "queue journal path (JSONL); resumes the campaign in it if present")
	lease := flag.Float64("lease", 60, "shard lease duration (s); a worker silent this long forfeits its shards")
	maxAttempts := flag.Int("max-attempts", 5, "bookings per shard before it is abandoned as failed")
	mergedOut := flag.String("out", "", "also write the merged canonical JSONL stream to this file")
	manifestOut := flag.String("manifest", "", "write a merged run manifest (worker/shard provenance) to this file")
	quiet := flag.Bool("quiet", false, "suppress per-shard log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	d, err := fabric.NewDispatcher(fabric.Options{
		LeaseSeconds: *lease,
		MaxAttempts:  *maxAttempts,
		JournalPath:  *journal,
		MergedPath:   *mergedOut,
		ManifestPath: *manifestOut,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "griddispatch:", err)
		os.Exit(1)
	}
	srv, err := fabric.Serve(*listen, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "griddispatch:", err)
		os.Exit(1)
	}
	logger.Printf("griddispatch: listening on http://%s (/api /metrics /status /events)", srv.Addr())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	logger.Printf("griddispatch: shutting down (journal keeps completed shards)")
	srv.Close()
}
